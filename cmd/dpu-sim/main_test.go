package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dpuv2/internal/arch"
	"dpuv2/internal/artifact"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
)

// writeArtifact compiles a tiny graph and writes it as a .dpuprog into
// a temp dir, returning the path — the "load" half of the emit→load
// round trip exercised from the simulator's side.
func writeArtifact(t *testing.T) string {
	t.Helper()
	g := dag.New("cmdtest")
	a, b := g.AddInput(), g.AddInput()
	g.AddOp(dag.OpMul, g.AddOp(dag.OpAdd, a, b), g.AddConst(3))
	c, err := compiler.Compile(g, arch.Config{D: 2, B: 8, R: 16, Output: arch.OutPerLayer}, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	art := &artifact.Artifact{Fingerprint: g.Fingerprint(), Options: compiler.Options{}.Normalized(), Compiled: c}
	data, err := artifact.EncodeBytes(art)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), "cmdtest.dpuprog")
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSimulateNamedWorkload: the compile-and-simulate path verifies
// against the reference evaluator and reports it.
func TestSimulateNamedWorkload(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-workload", "bp_200", "-scale", "0.01", "-d", "2", "-b", "8", "-r", "16"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	for _, want := range []string{"verified:", "cycles:", "throughput:"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("report lacks %q:\n%s", want, stdout.String())
		}
	}
}

// TestSimulateArtifact: -artifact executes a .dpuprog directly — no
// compilation — and still verifies bit-exactly against the reference
// evaluator (the artifact carries the graph for exactly this purpose).
func TestSimulateArtifact(t *testing.T) {
	p := writeArtifact(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-artifact", p}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "artifact:") || !strings.Contains(out, "format v1") {
		t.Errorf("report does not identify the artifact:\n%s", out)
	}
	if !strings.Contains(out, "verified:") {
		t.Errorf("artifact execution was not verified:\n%s", out)
	}
	if !strings.Contains(out, "cmdtest") {
		t.Errorf("report lost the workload name carried by the artifact:\n%s", out)
	}
}

// TestBadInputsExitNonZero: missing, truncated and corrupted artifacts
// — and plain flag mistakes — all exit non-zero with a diagnostic.
func TestBadInputsExitNonZero(t *testing.T) {
	valid, err := os.ReadFile(writeArtifact(t))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	truncated := filepath.Join(dir, "trunc.dpuprog")
	os.WriteFile(truncated, valid[:len(valid)/2], 0o644)
	flipped := filepath.Join(dir, "flip.dpuprog")
	bad := append([]byte(nil), valid...)
	bad[len(bad)-3] ^= 0x08
	os.WriteFile(flipped, bad, 0o644)
	notArtifact := filepath.Join(dir, "plain.dpuprog")
	os.WriteFile(notArtifact, []byte("this is not an artifact"), 0o644)

	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-no-such-flag"}},
		{"unknown workload", []string{"-workload", "nope"}},
		{"invalid config", []string{"-workload", "bp_200", "-scale", "0.01", "-b", "3"}},
		{"missing artifact", []string{"-artifact", filepath.Join(dir, "ghost.dpuprog")}},
		{"truncated artifact", []string{"-artifact", truncated}},
		{"bit-flipped artifact", []string{"-artifact", flipped}},
		{"not an artifact", []string{"-artifact", notArtifact}},
		// The artifact fixes workload and configuration; conflicting
		// explicit flags must error, not be silently ignored.
		{"artifact + workload", []string{"-artifact", truncated, "-workload", "mnist"}},
		{"artifact + config", []string{"-artifact", truncated, "-d", "5"}},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(tc.args, &stdout, &stderr); code == 0 {
			t.Errorf("%s: exit 0, want non-zero", tc.name)
		} else if stderr.Len() == 0 {
			t.Errorf("%s: nothing on stderr", tc.name)
		}
	}
}

// TestHelpExitsZero: -h is a successful usage request, not a mistake.
func TestHelpExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-h"}, &stdout, &stderr); code != 0 {
		t.Errorf("-h exited %d, want 0", code)
	}
	if !strings.Contains(stderr.String(), "-artifact") {
		t.Error("-h did not print usage")
	}
}
