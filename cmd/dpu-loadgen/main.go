// Command dpu-loadgen is the closed-loop load generator for dpu-serve,
// in the spirit of a k6 workload driver: a fixed set of concurrent
// clients hammers POST /execute with a mixed population of random
// graphs, optionally paced to a target request rate, and reports a
// reproducible JSON summary (throughput, error counts, latency
// quantiles) so the batching scheduler's claims can be measured rather
// than asserted.
//
// Closed loop means each client waits for its response before sending
// the next request, so the offered load self-limits to what the server
// sustains; -qps adds a global pacing schedule on top (clients skip
// ahead to their next slot, never exceeding the target rate).
//
// Examples:
//
//	dpu-loadgen -url http://localhost:8080 -c 16 -duration 10s -json
//	dpu-loadgen -self -c 8 -qps 500 -graphs 4 -duration 5s
//
// -self serves in-process (its own engine + batching scheduler), which
// makes the tool a one-command smoke test: it exits non-zero if no
// request completes.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dpuv2/internal/dag"
	"dpuv2/internal/engine"
	"dpuv2/internal/metrics"
	"dpuv2/internal/serve"
	"dpuv2/internal/trace"
)

type config struct {
	url         string
	self        bool
	duration    time.Duration
	concurrency int
	qps         float64
	graphs      int
	inputsPer   int
	seed        int64
	slowest     int
	jsonOut     bool
}

// target is one graph of the mixed population, pre-rendered to the wire
// format.
type target struct {
	text string
	nIn  int
}

// buildPopulation renders `n` random DAGs spanning shapes (binary/k-ary,
// deep/wide) — every client draws from the same population, so requests
// for the same graph coalesce in the server's scheduler.
func buildPopulation(n int, seed int64) []target {
	shapes := []dag.RandomConfig{
		{Inputs: 4, Interior: 30, MaxArgs: 2, MulFrac: 0.3},
		{Inputs: 6, Interior: 40, MaxArgs: 3, MulFrac: 0.5},
		{Inputs: 3, Interior: 50, MaxArgs: 2, MulFrac: 0.2, Window: 4},
		{Inputs: 8, Interior: 35, MaxArgs: 2, MulFrac: 0.4, Window: 64},
	}
	targets := make([]target, n)
	for i := range targets {
		shape := shapes[i%len(shapes)]
		shape.Seed = seed + int64(i)
		g := dag.RandomGraph(shape)
		var sb strings.Builder
		if err := dag.Write(&sb, g); err != nil {
			panic(err) // random graphs always serialize
		}
		targets[i] = target{text: sb.String(), nIn: len(g.Inputs())}
	}
	return targets
}

// summary is the JSON report.
type summary struct {
	DurationSec float64 `json:"duration_sec"`
	Clients     int     `json:"clients"`
	TargetQPS   float64 `json:"target_qps,omitempty"`
	// Requests counts HTTP round trips; Completed/FailedVectors count
	// individual input vectors inside 200 responses.
	Requests        int64            `json:"requests"`
	Completed       int64            `json:"completed"`
	FailedVectors   int64            `json:"failed_vectors"`
	HTTPErrors      map[string]int64 `json:"http_errors,omitempty"`
	TransportErrors int64            `json:"transport_errors"`
	AchievedQPS     float64          `json:"achieved_qps"`
	// Latency is per-request wall time in nanoseconds of ADMITTED
	// traffic only (HTTP 200). Error-path durations live in
	// ErrorLatency: a 30s client timeout against a dead server is not a
	// p99 of the service, and folding the two histograms together (as
	// this tool once did) poisons every reported quantile.
	Latency metrics.Summary `json:"latency_ns"`
	// ErrorLatency is per-request wall time of requests that failed in
	// transport or were refused with a non-200 status (429/503 shedding,
	// connect errors, client timeouts).
	ErrorLatency metrics.Summary `json:"error_latency_ns"`
	// SlowestAdmitted lists the K slowest admitted requests with the
	// trace IDs the generator stamped on them (every request carries a
	// traceparent header, so the server traced these) — the bridge from a
	// reported tail to GET /traces on the server side: take a trace_id
	// from here, find the matching trace there, read where the time went.
	SlowestAdmitted []SlowRequest `json:"slowest_admitted,omitempty"`
}

// SlowRequest is one row of summary.SlowestAdmitted.
type SlowRequest struct {
	TraceID    string `json:"trace_id"`
	DurationNS int64  `json:"duration_ns"`
}

func run(cfg config, logw io.Writer) (summary, error) {
	targets := buildPopulation(cfg.graphs, cfg.seed)

	url := cfg.url
	if cfg.self {
		eng := engine.New(engine.Options{})
		srv := serve.New(eng, serve.Options{})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		defer srv.Drain()
		url = ts.URL
		fmt.Fprintf(logw, "dpu-loadgen: in-process server at %s\n", url)
	}
	if url == "" {
		return summary{}, fmt.Errorf("need -url or -self")
	}

	var (
		hist      metrics.Histogram // admitted (200) request latency
		errHist   metrics.Histogram // transport-error / non-200 latency
		requests  atomic.Int64
		completed atomic.Int64
		failedVec atomic.Int64
		transport atomic.Int64
		statusMu  sync.Mutex
		statuses  = map[string]int64{}
		slowMu    sync.Mutex
		slow      []SlowRequest // K slowest admitted, sorted slowest-first
	)
	// recordSlow keeps the cfg.slowest slowest admitted requests by
	// insertion into the small sorted slice — K is single digits, so this
	// beats any heap on both code and cycles.
	recordSlow := func(id string, d time.Duration) {
		if cfg.slowest <= 0 {
			return
		}
		slowMu.Lock()
		defer slowMu.Unlock()
		if len(slow) == cfg.slowest && int64(d) <= slow[len(slow)-1].DurationNS {
			return
		}
		slow = append(slow, SlowRequest{TraceID: id, DurationNS: int64(d)})
		for j := len(slow) - 1; j > 0 && slow[j].DurationNS > slow[j-1].DurationNS; j-- {
			slow[j], slow[j-1] = slow[j-1], slow[j]
		}
		if len(slow) > cfg.slowest {
			slow = slow[:cfg.slowest]
		}
	}
	var interval time.Duration
	var slot atomic.Int64
	if cfg.qps > 0 {
		interval = time.Duration(float64(time.Second) / cfg.qps)
	}
	client := &http.Client{Timeout: 30 * time.Second}
	start := time.Now()
	deadline := start.Add(cfg.duration)

	var wg sync.WaitGroup
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + 7919*int64(w)))
			for {
				if interval > 0 {
					// Global pacing: claim the next slot of the
					// schedule and wait for it.
					at := start.Add(time.Duration(slot.Add(1)-1) * interval)
					if at.After(deadline) {
						return
					}
					time.Sleep(time.Until(at))
				} else if !time.Now().Before(deadline) {
					return
				}
				tgt := targets[rng.Intn(len(targets))]
				req := serve.ExecuteRequest{Graph: tgt.text, Inputs: make([][]float64, cfg.inputsPer)}
				for i := range req.Inputs {
					vec := make([]float64, tgt.nIn)
					for j := range vec {
						vec[j] = rng.NormFloat64()
					}
					req.Inputs[i] = vec
				}
				body, err := json.Marshal(req)
				if err != nil {
					transport.Add(1)
					continue
				}
				// Every request carries a freshly minted traceparent, so
				// the server traces all loadgen traffic (header-carrying
				// requests bypass sampling) and the summary's slowest rows
				// can be looked up on the server's /traces by ID.
				traceID := trace.NewID()
				hreq, err := http.NewRequest(http.MethodPost, url+"/execute", bytes.NewReader(body))
				if err != nil {
					transport.Add(1)
					continue
				}
				hreq.Header.Set("Content-Type", "application/json")
				hreq.Header.Set(trace.Header, trace.Traceparent(traceID, trace.NewSpanID()))
				t0 := time.Now()
				resp, err := client.Do(hreq)
				requests.Add(1)
				if err != nil {
					errHist.ObserveDuration(time.Since(t0))
					transport.Add(1)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					errHist.ObserveDuration(time.Since(t0))
					statusMu.Lock()
					statuses[fmt.Sprint(resp.StatusCode)]++
					statusMu.Unlock()
					continue
				}
				var out serve.ExecuteResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				// Drain the body fully so the keep-alive connection is
				// reusable; closing early forces a reconnect per request.
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				// Latency is whole-request wall time: headers, body
				// transfer and decode — not time-to-first-byte.
				d := time.Since(t0)
				hist.ObserveDuration(d)
				recordSlow(traceID.String(), d)
				if err != nil {
					transport.Add(1)
					continue
				}
				for _, r := range out.Results {
					if r.Error != "" {
						failedVec.Add(1)
					} else {
						completed.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	s := summary{
		DurationSec:     elapsed.Seconds(),
		Clients:         cfg.concurrency,
		TargetQPS:       cfg.qps,
		Requests:        requests.Load(),
		Completed:       completed.Load(),
		FailedVectors:   failedVec.Load(),
		TransportErrors: transport.Load(),
		AchievedQPS:     float64(requests.Load()) / elapsed.Seconds(),
		Latency:         hist.Summary(),
		ErrorLatency:    errHist.Summary(),
		SlowestAdmitted: slow,
	}
	if len(statuses) > 0 {
		s.HTTPErrors = statuses
	}
	return s, nil
}

func main() {
	cfg := config{}
	flag.StringVar(&cfg.url, "url", "", "target server base URL (e.g. http://localhost:8080)")
	flag.BoolVar(&cfg.self, "self", false, "serve in-process instead of targeting -url")
	flag.DurationVar(&cfg.duration, "duration", 5*time.Second, "how long to generate load")
	flag.IntVar(&cfg.concurrency, "c", 8, "concurrent closed-loop clients")
	flag.Float64Var(&cfg.qps, "qps", 0, "target request rate across all clients (0: unpaced)")
	flag.IntVar(&cfg.graphs, "graphs", 4, "distinct random graphs in the population")
	flag.IntVar(&cfg.inputsPer, "inputs", 2, "input vectors per request")
	flag.Int64Var(&cfg.seed, "seed", 1, "population and input seed")
	flag.IntVar(&cfg.slowest, "slowest", 5, "report the trace IDs of this many slowest admitted requests (0: none)")
	flag.BoolVar(&cfg.jsonOut, "json", false, "emit the summary as JSON")
	flag.Parse()

	s, err := run(cfg, os.Stderr)
	if err != nil {
		log.Fatal(err)
	}
	if cfg.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Printf("requests %d  vectors ok %d  failed %d  transport errors %d\n",
			s.Requests, s.Completed, s.FailedVectors, s.TransportErrors)
		fmt.Printf("achieved %.1f req/s over %.2fs with %d clients\n", s.AchievedQPS, s.DurationSec, s.Clients)
		fmt.Printf("latency p50 %v  p95 %v  p99 %v  p999 %v  max %v (admitted)\n",
			time.Duration(s.Latency.P50), time.Duration(s.Latency.P95),
			time.Duration(s.Latency.P99), time.Duration(s.Latency.P999),
			time.Duration(s.Latency.Max))
		if s.ErrorLatency.Count > 0 {
			fmt.Printf("error-path latency p50 %v  p99 %v over %d requests\n",
				time.Duration(s.ErrorLatency.P50), time.Duration(s.ErrorLatency.P99), s.ErrorLatency.Count)
		}
		for _, sr := range s.SlowestAdmitted {
			fmt.Printf("slow trace %s  %v (look it up on the server's /traces)\n",
				sr.TraceID, time.Duration(sr.DurationNS))
		}
	}
	if s.Completed == 0 {
		log.Fatal("dpu-loadgen: no request completed successfully")
	}
}
