package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestLoadgenSelfSmoke is the in-process version of CI's loadgen smoke
// step: a short self-targeted run must complete requests, record
// consistent counters, and produce a JSON-serializable summary.
func TestLoadgenSelfSmoke(t *testing.T) {
	dur := 400 * time.Millisecond
	if testing.Short() {
		dur = 150 * time.Millisecond
	}
	s, err := run(config{
		self:        true,
		duration:    dur,
		concurrency: 4,
		graphs:      3,
		inputsPer:   2,
		seed:        1,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if s.Requests == 0 || s.Completed == 0 {
		t.Fatalf("no load generated: %+v", s)
	}
	if s.TransportErrors != 0 || len(s.HTTPErrors) != 0 {
		t.Errorf("errors against a healthy in-process server: %+v", s)
	}
	// Every vector of every 200 is accounted for: either completed or an
	// itemized per-vector error (e.g. overflow on mul-heavy graphs with
	// Gaussian inputs — a loadgen feature, it exercises the error path).
	if s.Completed+s.FailedVectors != s.Requests*2 {
		t.Errorf("completed %d + failed %d != requests×2 = %d", s.Completed, s.FailedVectors, s.Requests*2)
	}
	if s.Latency.Count != uint64(s.Requests) {
		t.Errorf("latency count %d != requests %d", s.Latency.Count, s.Requests)
	}
	if s.Latency.P50 <= 0 || s.Latency.P50 > s.Latency.P99 {
		t.Errorf("latency quantiles inconsistent: %+v", s.Latency)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Errorf("summary not JSON-serializable: %v", err)
	}
}

// TestLoadgenPacing checks that a -qps target caps the offered load:
// the achieved rate must not meaningfully exceed the schedule.
func TestLoadgenPacing(t *testing.T) {
	if testing.Short() {
		t.Skip("pacing needs wall time")
	}
	s, err := run(config{
		self:        true,
		duration:    500 * time.Millisecond,
		concurrency: 4,
		qps:         40,
		graphs:      2,
		inputsPer:   1,
		seed:        2,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if s.Requests == 0 {
		t.Fatal("no load generated")
	}
	// 40 qps × 0.5 s = 20 scheduled slots; allow slack for rounding.
	if s.Requests > 25 {
		t.Errorf("pacing exceeded: %d requests for a 20-slot schedule", s.Requests)
	}
}

func TestBuildPopulationDeterministic(t *testing.T) {
	a := buildPopulation(4, 7)
	b := buildPopulation(4, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("population not deterministic at %d", i)
		}
	}
	if a[0].text == buildPopulation(4, 8)[0].text {
		t.Error("different seeds produced identical graphs")
	}
	for i, tgt := range a {
		if tgt.nIn == 0 || tgt.text == "" {
			t.Errorf("target %d malformed: %+v", i, tgt)
		}
	}
}

// TestRefusedConnectionKeepsAdmittedLatencyClean is the regression test
// for the latency-accounting bugfix: a run against a dead endpoint must
// report ZERO admitted-latency samples — every duration (including the
// client's connect failures) belongs to error_latency_ns. Before the
// split, those error durations were folded into the admitted histogram
// and poisoned its p99.
func TestRefusedConnectionKeepsAdmittedLatencyClean(t *testing.T) {
	// A listener bound and immediately closed: connections are refused
	// fast, on a port nothing else can be using.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + ln.Addr().String()
	ln.Close()

	s, err := run(config{
		url:         url,
		duration:    200 * time.Millisecond,
		concurrency: 2,
		graphs:      2,
		inputsPer:   1,
		seed:        1,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if s.Requests == 0 || s.TransportErrors == 0 {
		t.Fatalf("refused-connection run made no attempts: %+v", s)
	}
	if s.Completed != 0 {
		t.Fatalf("completed %d vectors against a closed port", s.Completed)
	}
	if s.Latency.Count != 0 {
		t.Errorf("admitted-latency histogram has %d samples from a run with zero admitted requests", s.Latency.Count)
	}
	if s.ErrorLatency.Count != uint64(s.Requests) {
		t.Errorf("error-latency count %d != requests %d", s.ErrorLatency.Count, s.Requests)
	}
}

// TestSheddingGoesToErrorLatency pins the other half of the accounting
// split: non-200 responses (a draining server's 503s) are error-path
// latency, not admitted latency.
func TestSheddingGoesToErrorLatency(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "draining", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	s, err := run(config{
		url:         ts.URL,
		duration:    200 * time.Millisecond,
		concurrency: 2,
		graphs:      2,
		inputsPer:   1,
		seed:        1,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if s.HTTPErrors["503"] == 0 {
		t.Fatalf("no 503s recorded: %+v", s)
	}
	if s.Latency.Count != 0 {
		t.Errorf("admitted-latency histogram has %d samples, all responses were 503", s.Latency.Count)
	}
	if s.ErrorLatency.Count != uint64(s.Requests) {
		t.Errorf("error-latency count %d != requests %d", s.ErrorLatency.Count, s.Requests)
	}
}
