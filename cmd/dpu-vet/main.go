// Command dpu-vet statically verifies compiled-program artifacts
// offline: the same analysis the serving engine runs at its trust
// boundaries (see internal/verify), as a lint over files. Point it at a
// shared -artifact-dir before (or instead of) serving from it:
//
//	dpu-vet /var/dpu-store          # vet every artifact and decision
//	dpu-vet -json prog.dpuprog      # machine-readable findings
//
// Exit status is 0 when everything decodes and verifies clean (warnings
// allowed), 1 when any file fails to decode or carries error-severity
// findings, 2 on usage errors.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"dpuv2/internal/artifact"
	"dpuv2/internal/verify"
)

// report is one vetted file. Error is a decode-level failure (the file
// never reached the verifier); Findings are the verifier's results.
type report struct {
	Path     string           `json:"path"`
	Error    string           `json:"error,omitempty"`
	Findings []verify.Finding `json:"findings,omitempty"`
}

func (r report) bad() bool { return r.Error != "" || verify.HasErrors(r.Findings) }

// run is the testable body of the command; it returns the exit code.
func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("dpu-vet", flag.ContinueOnError)
	flags.SetOutput(stderr)
	jsonOut := flags.Bool("json", false, "emit one JSON report per file instead of text")
	if err := flags.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0 // -h is a successful usage request, not a mistake
		}
		return 2
	}
	if flags.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: dpu-vet [-json] <artifact-file-or-dir>...")
		return 2
	}

	var files []string
	for _, arg := range flags.Args() {
		info, err := os.Stat(arg)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		if !info.IsDir() {
			files = append(files, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, werr error) error {
			if werr != nil || d.IsDir() {
				return werr
			}
			// Hidden files cover a writer's in-flight ".tmp-*" spool; a
			// crashed writer's leftovers are the store's to sweep, not ours
			// to fail on.
			if strings.HasPrefix(d.Name(), ".") {
				return nil
			}
			if ext := filepath.Ext(path); ext == artifact.Ext || ext == artifact.DecisionExt {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	enc := json.NewEncoder(stdout)
	bad, warnings := 0, 0
	for _, path := range files {
		r := vetFile(path)
		if r.bad() {
			bad++
		}
		for _, f := range r.Findings {
			if f.Sev == verify.SevWarning {
				warnings++
			}
		}
		if *jsonOut {
			enc.Encode(r)
			continue
		}
		if r.Error != "" {
			fmt.Fprintf(stdout, "%s: %s\n", r.Path, r.Error)
		}
		for _, f := range r.Findings {
			fmt.Fprintf(stdout, "%s: %s\n", r.Path, f)
		}
	}
	if !*jsonOut {
		fmt.Fprintf(stdout, "vetted %d file(s): %d bad, %d warning(s)\n", len(files), bad, warnings)
	}
	if bad > 0 {
		return 1
	}
	return 0
}

// vetFile decodes and verifies one file by extension.
func vetFile(path string) report {
	r := report{Path: path}
	b, err := os.ReadFile(path)
	if err != nil {
		r.Error = err.Error()
		return r
	}
	switch filepath.Ext(path) {
	case artifact.DecisionExt:
		// Decoding fully validates a decision (config, options, scores);
		// the program it points at is vetted as its own .dpuprog file.
		if _, err := artifact.DecodeDecisionBytes(b); err != nil {
			r.Error = err.Error()
		}
	default:
		a, err := artifact.DecodeBytes(b)
		if err != nil {
			r.Error = err.Error()
			return r
		}
		r.Findings = verify.Compiled(a.Compiled)
	}
	return r
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
