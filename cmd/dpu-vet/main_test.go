package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dpuv2/internal/arch"
	"dpuv2/internal/artifact"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
)

// writeArtifacts populates dir with one clean artifact and one clean
// decision, returning the artifact's encoded bytes for corruption tests.
func writeArtifacts(t *testing.T, dir string) []byte {
	t.Helper()
	g := dag.RandomGraph(dag.RandomConfig{Inputs: 4, Interior: 30, MaxArgs: 2, MulFrac: 0.3, Seed: 5})
	cfg := arch.Config{D: 2, B: 8, R: 16}
	c, err := compiler.Compile(g, cfg, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := &artifact.Artifact{Fingerprint: g.Fingerprint(), Options: compiler.Options{}.Normalized(), Compiled: c}
	ab, err := artifact.EncodeBytes(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "good"+artifact.Ext), ab, 0o644); err != nil {
		t.Fatal(err)
	}
	d := &artifact.Decision{
		Fingerprint: g.Fingerprint(),
		Config:      c.Prog.Cfg,
		Options:     compiler.Options{}.Normalized(),
		Score:       1,
		Provenance:  artifact.Provenance{Metric: "edp", Default: c.Prog.Cfg, DefaultScore: 1, Tuner: "test"},
	}
	db, err := artifact.EncodeDecisionBytes(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "good"+artifact.DecisionExt), db, 0o644); err != nil {
		t.Fatal(err)
	}
	return ab
}

func TestVetCleanDir(t *testing.T) {
	dir := t.TempDir()
	writeArtifacts(t, dir)
	var out, errb bytes.Buffer
	if code := run([]string{dir}, &out, &errb); code != 0 {
		t.Fatalf("exit %d on a clean dir; out=%s err=%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "0 bad") {
		t.Errorf("summary missing: %s", out.String())
	}
}

func TestVetTruncatedArtifact(t *testing.T) {
	dir := t.TempDir()
	ab := writeArtifacts(t, dir)
	if err := os.WriteFile(filepath.Join(dir, "trunc"+artifact.Ext), ab[:40], 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{dir}, &out, &errb); code != 1 {
		t.Fatalf("exit %d on a truncated artifact, want 1; out=%s", code, out.String())
	}
	if !strings.Contains(out.String(), "1 bad") {
		t.Errorf("summary missing the bad file: %s", out.String())
	}
}

// TestVetSemanticallyCorruptArtifact: a CRC-clean artifact whose program
// is illegal is reported with the verifier's finding class, not a bare
// "corrupt".
func TestVetSemanticallyCorruptArtifact(t *testing.T) {
	dir := t.TempDir()
	ab := writeArtifacts(t, dir)
	a, err := artifact.DecodeBytes(ab)
	if err != nil {
		t.Fatal(err)
	}
	instrs := a.Compiled.Prog.Instrs
	i := -1
	for j, in := range instrs {
		if in.Kind == arch.KindExec {
			i = j
			break
		}
	}
	if i <= 0 {
		t.Fatal("no exec to displace")
	}
	instrs[0], instrs[i] = instrs[i], instrs[0]
	bad, err := artifact.EncodeBytes(a)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "illegal"+artifact.Ext)
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 1 {
		t.Fatalf("exit %d on an illegal artifact, want 1", code)
	}
	if !strings.Contains(out.String(), "uninit-read") {
		t.Errorf("output does not name the finding class: %s", out.String())
	}
}

func TestVetJSON(t *testing.T) {
	dir := t.TempDir()
	ab := writeArtifacts(t, dir)
	if err := os.WriteFile(filepath.Join(dir, "trunc"+artifact.Ext), ab[:40], 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-json", dir}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	lines := 0
	sc := bufio.NewScanner(&out)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var r report
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %d not JSON: %v: %s", lines, err, sc.Text())
		}
		lines++
	}
	if lines != 3 { // good.dpuprog, good.dputune, trunc.dpuprog
		t.Errorf("got %d JSON reports, want 3", lines)
	}
}

func TestVetUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("exit %d with no args, want 2", code)
	}
}
