package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dpuv2/internal/arch"
	"dpuv2/internal/artifact"
	"dpuv2/internal/dag"
)

// tinyGrid keeps CLI tests fast; -points truncates the 48-point grid.
const tinyPoints = "6"

func TestTuneWorkloadToStore(t *testing.T) {
	dir := t.TempDir()
	dump := filepath.Join(t.TempDir(), "w.dag")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-workload", "tretail", "-scale", "0.02", "-metric", "latency",
		"-points", tinyPoints, "-store", dir, "-dump-graph", dump,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "persisted:") {
		t.Errorf("stdout does not report persistence:\n%s", stdout.String())
	}

	// The dumped graph must reproduce the fingerprint the decision is
	// keyed on — that is what lets a client hit the tuned path.
	f, err := os.Open(dump)
	if err != nil {
		t.Fatal(err)
	}
	g, err := dag.Read(f, "w")
	f.Close()
	if err != nil {
		t.Fatal(err)
	}

	st, err := artifact.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := st.GetDecision(g.Fingerprint())
	if err != nil {
		t.Fatalf("decision not in store under the dumped graph's fingerprint: %v", err)
	}
	if dec.Provenance.Tuner == "" || dec.Provenance.Metric != "latency" {
		t.Fatalf("incomplete provenance: %+v", dec.Provenance)
	}

	// The tuned program was staged alongside, under the engine's key.
	key := artifact.KeyFor(g.Fingerprint(), dec.Config, dec.Options)
	if _, err := st.Get(key); err != nil {
		t.Fatalf("tuned program not staged: %v", err)
	}
}

func TestTuneJSONOutput(t *testing.T) {
	dagPath := filepath.Join(t.TempDir(), "g.dag")
	if err := os.WriteFile(dagPath, []byte("input\ninput\nadd 0 1\nconst 3\nmul 2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-in", dagPath, "-points", tinyPoints, "-json"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	var out decisionJSON
	if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, stdout.String())
	}
	if out.Fingerprint == "" || out.Metric != "latency" || out.GridSize == 0 {
		t.Fatalf("incomplete decision JSON: %+v", out)
	}
	if err := (out.Config.Validate()); err != nil {
		t.Fatalf("decision config invalid: %v", err)
	}
	if out.Default != arch.MinEDP() {
		t.Fatalf("default config = %+v, want min-EDP", out.Default)
	}
}

func TestTuneBadInputs(t *testing.T) {
	for name, args := range map[string][]string{
		"unknown workload":  {"-workload", "nope"},
		"unknown metric":    {"-metric", "throughput"},
		"invalid default":   {"-workload", "tretail", "-scale", "0.01", "-d", "9", "-b", "1", "-r", "1"},
		"missing dag file":  {"-in", "/nonexistent/g.dag"},
		"unparseable flags": {"-points", "x"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code == 0 {
			t.Errorf("%s: exit 0, want non-zero", name)
		}
	}
}

func TestTuneHelpIsNotAnError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-h"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-h exited %d", code)
	}
	if !strings.Contains(stderr.String(), "-metric") {
		t.Error("usage text does not document -metric")
	}
}

// TestTuneAnnealSearch runs the anneal search end to end through the
// CLI: the JSON decision must carry the anneal provenance and the
// -trace file must be byte-identical across two same-seed runs — the
// exact check CI's anneal-determinism step performs.
func TestTuneAnnealSearch(t *testing.T) {
	runOnce := func(trace string) decisionJSON {
		var stdout, stderr bytes.Buffer
		code := run([]string{
			"-workload", "tretail", "-scale", "0.01", "-metric", "edp",
			"-search", "anneal", "-seed", "7", "-chains", "2", "-steps", "6",
			"-points", tinyPoints, "-trace", trace, "-json",
		}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, stderr.String())
		}
		var out decisionJSON
		if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
			t.Fatalf("-json output does not parse: %v\n%s", err, stdout.String())
		}
		return out
	}

	dir := t.TempDir()
	t1 := filepath.Join(dir, "t1.json")
	t2 := filepath.Join(dir, "t2.json")
	out1 := runOnce(t1)
	out2 := runOnce(t2)

	if out1.Search != "anneal" || out1.AnnealSeed != 7 || out1.Chains != 2 || out1.Steps != 6 {
		t.Fatalf("anneal provenance missing from decision JSON: %+v", out1)
	}
	if out1.InitTemp <= 0 || out1.Cool <= 0 {
		t.Fatalf("temperature schedule missing: %+v", out1)
	}
	if out1.Config != out2.Config || out1.Score != out2.Score {
		t.Fatalf("same-seed runs disagree: %+v vs %+v", out1, out2)
	}
	b1, err := os.ReadFile(t1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(t2)
	if err != nil {
		t.Fatal(err)
	}
	if len(b1) == 0 || !bytes.Equal(b1, b2) {
		t.Fatalf("same-seed traces not byte-identical (%d vs %d bytes)", len(b1), len(b2))
	}
}

func TestTuneAnnealBadInputs(t *testing.T) {
	for name, args := range map[string][]string{
		"unknown search":       {"-search", "genetic"},
		"negative chains":      {"-search", "anneal", "-chains", "-1"},
		"negative steps":       {"-search", "anneal", "-steps", "-2"},
		"negative init temp":   {"-search", "anneal", "-init-temp", "-0.5"},
		"cool above one":       {"-search", "anneal", "-cool", "1.5"},
		"trace without anneal": {"-trace", "/tmp/t.json"},
		"unparseable chains":   {"-chains", "x"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("%s: exit %d, want 2", name, code)
		}
	}
}
