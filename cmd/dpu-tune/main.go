// Command dpu-tune runs the offline half of the autotuning loop: it
// sweeps a workload over the candidate configuration grid (the paper's
// 48-point design space by default), picks the configuration that
// minimizes the chosen metric, and emits a versioned `.dputune` decision
// — optionally persisted, together with the pre-compiled tuned program,
// into an artifact store that `dpu-serve -autotune -artifact-dir` then
// serves from with zero in-process tuning.
//
//	# Tune a Table I workload for latency under a 30s budget and stage
//	# the decision + tuned artifact for the server:
//	dpu-tune -workload tretail -scale 0.02 -metric latency \
//	         -budget 30s -store /var/lib/dpu/artifacts
//
//	# Then serve it — the first request runs on the tuned config:
//	dpu-serve -autotune -artifact-dir /var/lib/dpu/artifacts
//
// The workload can also come from a DAG file (-in, internal/dag text
// format); -dump-graph writes the tuned workload back out in that
// format, so a client can submit the byte-identical graph (and hence the
// identical fingerprint the decision is keyed on). -json prints the
// decision machine-readably. The tuned config must beat the default
// (-d/-b/-r) by -min-gain or the decision pins the default — autotuning
// never makes a workload slower.
//
// -search selects the candidate search. The default, grid, sweeps the
// paper's 48 points. anneal seeds simulated annealing from the best grid
// point and explores the enlarged off-grid space (deeper trees, wider
// bank/register ladders, alternate output topologies, data-memory
// sizing); -seed doubles as the anneal RNG seed, and -chains/-steps/
// -init-temp/-cool shape the schedule. The search is deterministic: the
// same seed and budget-in-points reproduce the identical decision at any
// -workers value, and -trace writes the accepted-move trace as JSON so
// two runs can be diffed byte-for-byte (the CI determinism check does
// exactly that):
//
//	dpu-tune -workload tretail -scale 0.02 -metric edp \
//	         -search anneal -seed 7 -trace trace.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"dpuv2/internal/arch"
	"dpuv2/internal/artifact"
	"dpuv2/internal/compiler"
	"dpuv2/internal/dag"
	"dpuv2/internal/dse"
	"dpuv2/internal/suite"
	"dpuv2/internal/tune"
)

// decisionJSON is the -json output shape; configs use the same field
// names the /execute request body accepts.
type decisionJSON struct {
	Fingerprint  string           `json:"fingerprint"`
	Config       arch.Config      `json:"config"`
	Options      compiler.Options `json:"options"`
	Score        float64          `json:"score"`
	Metric       string           `json:"metric"`
	Default      arch.Config      `json:"default"`
	DefaultScore float64          `json:"default_score"`
	Improvement  float64          `json:"improvement"` // fractional win over the default
	Points       int              `json:"points"`
	GridSize     int              `json:"grid_size"`
	BudgetNS     int64            `json:"budget_ns"`
	TunedAtUnix  int64            `json:"tuned_at_unix"`
	Tuner        string           `json:"tuner"`
	Search       string           `json:"search"`
	AnnealSeed   int64            `json:"anneal_seed,omitempty"`
	Chains       int              `json:"chains,omitempty"`
	Steps        int              `json:"steps,omitempty"`
	InitTemp     float64          `json:"init_temp,omitempty"`
	Cool         float64          `json:"cool,omitempty"`
	Accepted     int              `json:"accepted,omitempty"`
	Rejected     int              `json:"rejected,omitempty"`
}

// run is the testable body of the command; it returns the process exit
// code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dpu-tune", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workload := fs.String("workload", "tretail", "benchmark name from Table I")
	in := fs.String("in", "", "tune a DAG file (see internal/dag format) instead of a named benchmark")
	scale := fs.Float64("scale", 1.0, "workload scale")
	d := fs.Int("d", 3, "default config: tree depth D")
	b := fs.Int("b", 64, "default config: register banks B")
	r := fs.Int("r", 32, "default config: registers per bank R")
	metricName := fs.String("metric", "latency", "optimization target: latency, energy or edp")
	budget := fs.Duration("budget", 0, "wall-clock tuning budget (0: sweep the whole grid)")
	points := fs.Int("points", 0, "max candidate configs to evaluate (0: whole grid)")
	workers := fs.Int("workers", 0, "sweep worker count (0: one per CPU)")
	minGain := fs.Float64("min-gain", 0.01, "relative improvement required to switch off the default (0: any strictly better candidate wins)")
	seed := fs.Int64("seed", 0, "compiler randomization seed; with -search anneal, also the search RNG seed")
	part := fs.Int("partition", 0, "compiler coarse partition size (0 = off)")
	searchName := fs.String("search", "grid", "candidate search: grid (the 48-point sweep) or anneal (simulated annealing over the enlarged space)")
	chains := fs.Int("chains", 0, "anneal: independent chain count (0: default 4); part of the search identity, not a parallelism knob")
	steps := fs.Int("steps", 0, "anneal: mutation steps per chain (0: default 48)")
	initTemp := fs.Float64("init-temp", 0, "anneal: initial temperature as a relative metric distance (0: default 0.08)")
	cool := fs.Float64("cool", 0, "anneal: geometric per-step cooling factor in (0,1] (0: default 0.92)")
	tracePath := fs.String("trace", "", "with -search anneal: write the accepted-move search trace as JSON to this file")
	storeDir := fs.String("store", "", "persist the decision and the pre-compiled tuned program into this artifact store")
	dumpGraph := fs.String("dump-graph", "", "write the workload DAG to this file (dag text format), for submitting the identical fingerprint")
	asJSON := fs.Bool("json", false, "print the decision as JSON")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	var metric dse.Metric
	if err := metric.ParseMetric(*metricName); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	var search tune.SearchKind
	if err := search.Parse(*searchName); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *chains < 0 || *steps < 0 {
		fmt.Fprintf(stderr, "dpu-tune: -chains %d / -steps %d must be non-negative\n", *chains, *steps)
		return 2
	}
	if *initTemp < 0 || math.IsNaN(*initTemp) {
		fmt.Fprintf(stderr, "dpu-tune: -init-temp %v must be a non-negative number\n", *initTemp)
		return 2
	}
	if *cool < 0 || *cool > 1 || math.IsNaN(*cool) {
		fmt.Fprintf(stderr, "dpu-tune: -cool %v must be in [0, 1]\n", *cool)
		return 2
	}
	if *tracePath != "" && search != tune.SearchAnneal {
		fmt.Fprintln(stderr, "dpu-tune: -trace requires -search anneal")
		return 2
	}

	var g *dag.Graph
	var err error
	if *in != "" {
		f, ferr := os.Open(*in)
		if ferr != nil {
			fmt.Fprintln(stderr, ferr)
			return 1
		}
		g, err = dag.Read(f, *in)
		f.Close()
	} else {
		g, err = suite.Build(*workload, *scale)
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	if *dumpGraph != "" {
		f, err := os.Create(*dumpGraph)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := dag.Write(f, g); err != nil {
			f.Close()
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}

	def := arch.Config{D: *d, B: *b, R: *r, Output: arch.OutPerLayer}.Normalize()
	if err := def.Validate(); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	copts := compiler.Options{Seed: *seed, PartitionSize: *part}

	// The flag's 0 means "any strictly better candidate wins", but the
	// tuner's zero value means "use the 1% default"; its negative-clamp
	// mode is exactly the strictly-better behavior the flag documents.
	mg := *minGain
	if mg == 0 {
		mg = -1
	}
	tuner := tune.New(tune.Options{
		Metric:    metric,
		Budget:    *budget,
		MaxPoints: *points,
		Workers:   *workers,
		MinGain:   mg,
		Search:    search,
		Anneal: dse.AnnealOptions{
			Seed:     *seed,
			Chains:   *chains,
			Steps:    *steps,
			InitTemp: *initTemp,
			Cool:     *cool,
		},
	})
	start := time.Now()
	dec, trace, err := tuner.TuneTrace(context.Background(), g, def, copts)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	elapsed := time.Since(start)

	if *tracePath != "" && trace != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		tenc := json.NewEncoder(f)
		tenc.SetIndent("", "  ")
		if err := tenc.Encode(trace); err != nil {
			f.Close()
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}

	improvement := 0.0
	if dec.Provenance.DefaultScore > 0 {
		improvement = 1 - dec.Score/dec.Provenance.DefaultScore
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(decisionJSON{
			Fingerprint:  dec.Fingerprint.String(),
			Config:       dec.Config,
			Options:      dec.Options,
			Score:        dec.Score,
			Metric:       dec.Provenance.Metric,
			Default:      dec.Provenance.Default,
			DefaultScore: dec.Provenance.DefaultScore,
			Improvement:  improvement,
			Points:       dec.Provenance.Points,
			GridSize:     dec.Provenance.GridSize,
			BudgetNS:     dec.Provenance.BudgetNS,
			TunedAtUnix:  dec.Provenance.TunedAtUnix,
			Tuner:        dec.Provenance.Tuner,
			Search:       dec.Provenance.Search,
			AnnealSeed:   dec.Provenance.Seed,
			Chains:       dec.Provenance.Chains,
			Steps:        dec.Provenance.Steps,
			InitTemp:     dec.Provenance.InitTemp,
			Cool:         dec.Provenance.Cool,
			Accepted:     dec.Provenance.Accepted,
			Rejected:     dec.Provenance.Rejected,
		}); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	} else {
		fmt.Fprintf(stdout, "workload:    %s (%d nodes, fingerprint %s)\n", g.Name, g.NumNodes(), dec.Fingerprint.Short())
		fmt.Fprintf(stdout, "metric:      %s (lower is better)\n", dec.Provenance.Metric)
		fmt.Fprintf(stdout, "default:     %v  score %.4f\n", dec.Provenance.Default, dec.Provenance.DefaultScore)
		if dec.Config == dec.Provenance.Default {
			// The tuner clamps negative gain thresholds to 0 ("strictly
			// better"); report the threshold actually applied.
			fmt.Fprintf(stdout, "decision:    keep the default (no candidate won by ≥%.1f%%)\n", 100*math.Max(*minGain, 0))
		} else {
			fmt.Fprintf(stdout, "decision:    %v  score %.4f (%.1f%% better)\n", dec.Config, dec.Score, 100*improvement)
		}
		if p := dec.Provenance; p.Search == "anneal" {
			fmt.Fprintf(stdout, "search:      anneal (seed %d, %d chains × %d steps, %d accepted / %d rejected)\n",
				p.Seed, p.Chains, p.Steps, p.Accepted, p.Rejected)
		}
		fmt.Fprintf(stdout, "evaluated:   %d of %d candidate points in %v\n", dec.Provenance.Points, dec.Provenance.GridSize, elapsed.Round(time.Millisecond))
	}

	if *storeDir != "" {
		st, err := artifact.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := st.PutDecision(dec); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		// Stage the tuned program too, so the serving engine's first
		// request is a store hit, not a compile.
		c, err := compiler.Compile(g, dec.Config, dec.Options)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		a := &artifact.Artifact{Fingerprint: g.Fingerprint(), Options: dec.Options, Compiled: c}
		if err := st.Put(a); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if !*asJSON {
			fmt.Fprintf(stdout, "persisted:   decision + tuned program in %s\n", *storeDir)
		}
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
